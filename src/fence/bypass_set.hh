/**
 * @file
 * The Bypass Set (BS): a small hardware list in the L1 cache controller
 * holding the addresses of post-fence accesses that completed before
 * their weak fence did. Incoming invalidating coherence requests that
 * match are bounced (or, for Order/CO requests, answered with monitoring
 * / sharing information). Entries keep word-granularity masks so the SW+
 * design can discriminate true from false sharing; WS+/W+ match at line
 * granularity only.
 */

#ifndef ASF_FENCE_BYPASS_SET_HH
#define ASF_FENCE_BYPASS_SET_HH

#include <vector>

#include "fence/bloom_filter.hh"
#include "mem/message.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace asf
{

class BypassSet
{
  public:
    explicit BypassSet(unsigned capacity = 32);

    /**
     * Record a completed post-fence access, tagged with the epoch (id)
     * of the youngest weak fence it bypassed. Entries die when that
     * fence completes (fences complete in order), so overlapping fences
     * each protect exactly their own accesses. Returns false (and
     * records nothing) if the BS is full - the caller must then fall
     * back to strong-fence behavior for that access.
     */
    bool insert(Addr addr, uint64_t epoch = 0);

    /** True if any entry matches the line address. */
    bool containsLine(Addr line_addr) const;

    /**
     * Match an incoming request against the BS.
     * Line-granularity miss -> None. Line hit with overlapping words ->
     * TrueShare; line hit with disjoint words -> FalseShare. A zero
     * request mask is treated as a full-line request (TrueShare on any
     * line hit), which is the WS+/W+ line-granularity behavior.
     */
    BsMatch match(Addr line_addr, WordMask request_words) const;

    /** Drop every entry (W+ recovery, watchdog demotion). */
    void clear();

    /** Drop entries whose epoch is <= the completed fence's id. */
    void clearUpTo(uint64_t epoch);

    bool empty() const { return entries_.empty(); }
    bool full() const { return entries_.size() >= capacity_; }
    unsigned size() const { return unsigned(entries_.size()); }
    unsigned capacity() const { return capacity_; }

    /** Distinct line addresses currently held (Table 4 occupancy). */
    unsigned lineCount() const { return unsigned(entries_.size()); }

    /** Bloom-filter negative short-circuits since construction. */
    uint64_t bloomFiltered() const { return bloomFiltered_; }

  private:
    struct Entry
    {
        Addr line;
        WordMask words;
        uint64_t epoch;
    };

    void rebuildBloom();

    unsigned capacity_;
    std::vector<Entry> entries_;
    BloomFilter bloom_;
    mutable uint64_t bloomFiltered_ = 0;
};

} // namespace asf

#endif // ASF_FENCE_BYPASS_SET_HH
