#include "analysis/cfg.hh"

#include <deque>

#include "sim/logging.hh"

namespace asf::analysis
{

namespace
{

/** Abstract register value for constant propagation. */
struct AbsVal
{
    enum Kind : uint8_t { Undef, Const, Unknown };
    Kind kind = Undef;
    uint64_t value = 0;

    static AbsVal cst(uint64_t v) { return {Const, v}; }
    static AbsVal unknown() { return {Unknown, 0}; }

    bool operator==(const AbsVal &) const = default;
};

AbsVal
join(const AbsVal &a, const AbsVal &b)
{
    if (a.kind == AbsVal::Undef)
        return b;
    if (b.kind == AbsVal::Undef)
        return a;
    if (a.kind == AbsVal::Const && b.kind == AbsVal::Const &&
        a.value == b.value)
        return a;
    return AbsVal::unknown();
}

using RegState = std::vector<AbsVal>;

bool
joinInto(RegState &into, const RegState &from)
{
    bool changed = false;
    for (size_t r = 0; r < into.size(); r++) {
        AbsVal j = join(into[r], from[r]);
        if (!(j == into[r])) {
            into[r] = j;
            changed = true;
        }
    }
    return changed;
}

/** Transfer function: abstract effect of one instruction. */
void
transfer(const Instr &i, RegState &s)
{
    auto bin = [&](auto f) {
        if (s[i.ra].kind == AbsVal::Const &&
            s[i.rb].kind == AbsVal::Const)
            s[i.rd] = AbsVal::cst(f(s[i.ra].value, s[i.rb].value));
        else
            s[i.rd] = AbsVal::unknown();
    };
    auto immOp = [&](auto f) {
        if (s[i.ra].kind == AbsVal::Const)
            s[i.rd] = AbsVal::cst(f(s[i.ra].value, uint64_t(i.imm)));
        else
            s[i.rd] = AbsVal::unknown();
    };
    switch (i.op) {
      case Op::Li:
        s[i.rd] = AbsVal::cst(uint64_t(i.imm));
        break;
      case Op::Mov:
        s[i.rd] = s[i.ra];
        break;
      case Op::Add:
        bin([](uint64_t a, uint64_t b) { return a + b; });
        break;
      case Op::Sub:
        bin([](uint64_t a, uint64_t b) { return a - b; });
        break;
      case Op::Mul:
        bin([](uint64_t a, uint64_t b) { return a * b; });
        break;
      case Op::And:
        bin([](uint64_t a, uint64_t b) { return a & b; });
        break;
      case Op::Or:
        bin([](uint64_t a, uint64_t b) { return a | b; });
        break;
      case Op::Xor:
        bin([](uint64_t a, uint64_t b) { return a ^ b; });
        break;
      case Op::Addi:
        immOp([](uint64_t a, uint64_t b) { return a + b; });
        break;
      case Op::Andi:
        immOp([](uint64_t a, uint64_t b) { return a & b; });
        break;
      case Op::Muli:
        immOp([](uint64_t a, uint64_t b) { return a * b; });
        break;
      case Op::Shli:
        immOp([](uint64_t a, uint64_t b) { return a << (b & 63); });
        break;
      case Op::Shri:
        immOp([](uint64_t a, uint64_t b) { return a >> (b & 63); });
        break;
      case Op::Ld:
      case Op::Cas:
      case Op::Xchg:
      case Op::Rand:
        s[i.rd] = AbsVal::unknown();
        break;
      default:
        break; // no register results
    }
}

} // namespace

bool
mayAlias(const MemAccess &a, const MemAccess &b)
{
    if (!a.addrKnown || !b.addrKnown)
        return true;
    return a.addr == b.addr;
}

Cfg::Cfg(std::shared_ptr<const Program> prog) : prog_(std::move(prog))
{
    if (!prog_ || prog_->size() == 0)
        fatal("analysis::Cfg: empty program");
    buildSuccs();
    buildReach();
    buildLoopDepth();
    resolveAccesses();
}

void
Cfg::buildSuccs()
{
    const size_t n = prog_->size();
    succs_.assign(n, {});
    for (uint64_t pc = 0; pc < n; pc++) {
        const Instr &i = prog_->instrs[pc];
        auto addTarget = [&](uint64_t t) {
            if (t >= n)
                fatal("analysis::Cfg('%s'): pc %llu targets %llu, "
                      "past the end",
                      prog_->name.c_str(), (unsigned long long)pc,
                      (unsigned long long)t);
            succs_[pc].push_back(t);
        };
        if (i.op == Op::Halt)
            continue;
        if (i.op == Op::Jmp) {
            addTarget(uint64_t(i.imm));
            continue;
        }
        if (pc + 1 < n)
            succs_[pc].push_back(pc + 1);
        if (i.isCondBranch() && uint64_t(i.imm) != pc + 1)
            addTarget(uint64_t(i.imm));
    }
}

void
Cfg::buildReach()
{
    // Nonempty-path reachability: BFS from each node's successors.
    // Programs are tiny (tens to a few hundred instrs); O(n^2) is fine.
    const size_t n = prog_->size();
    reach_.assign(n, std::vector<bool>(n, false));
    for (uint64_t from = 0; from < n; from++) {
        std::deque<uint64_t> work(succs_[from].begin(),
                                  succs_[from].end());
        for (uint64_t s : succs_[from])
            reach_[from][s] = true;
        while (!work.empty()) {
            uint64_t cur = work.front();
            work.pop_front();
            for (uint64_t s : succs_[cur]) {
                if (!reach_[from][s]) {
                    reach_[from][s] = true;
                    work.push_back(s);
                }
            }
        }
    }
}

void
Cfg::buildLoopDepth()
{
    // Backward-branch nesting as the loop-depth estimate: for every
    // CFG edge u -> v with v <= u that is part of a real cycle, the
    // span [v, u] gains a level. The assembler emits loops exclusively
    // as backward branches, so this matches the source nesting.
    const size_t n = prog_->size();
    loopDepth_.assign(n, 0);
    for (uint64_t u = 0; u < n; u++) {
        for (uint64_t v : succs_[u]) {
            if (v <= u && reach_[v][v]) {
                for (uint64_t pc = v; pc <= u; pc++)
                    loopDepth_[pc]++;
            }
        }
    }
}

void
Cfg::resolveAccesses()
{
    // Forward constant propagation to a fixpoint. Entry state: all
    // registers Unknown (tid/env registers are host-set and vary per
    // thread; builders that bake addresses use li constants, which
    // still resolve).
    const size_t n = prog_->size();
    std::vector<RegState> in(n, RegState(numRegs));
    in[0].assign(numRegs, AbsVal::unknown());
    std::deque<uint64_t> work{0};
    std::vector<bool> queued(n, false);
    queued[0] = true;
    while (!work.empty()) {
        uint64_t pc = work.front();
        work.pop_front();
        queued[pc] = false;
        RegState out = in[pc];
        transfer(prog_->instrs[pc], out);
        for (uint64_t s : succs_[pc]) {
            if (joinInto(in[s], out) && !queued[s]) {
                queued[s] = true;
                work.push_back(s);
            }
        }
    }

    for (uint64_t pc = 0; pc < n; pc++) {
        const Instr &i = prog_->instrs[pc];
        if (i.op == Op::Fence || i.isAtomic())
            orderPoints_.push_back(pc);
        if (!i.isMem())
            continue;
        MemAccess a;
        a.pc = pc;
        a.read = i.readsMem();
        a.write = i.writesMem();
        a.atomic = i.isAtomic();
        a.loopDepth = loopDepth_[pc];
        const AbsVal &base = in[pc][i.ra];
        if (base.kind == AbsVal::Const) {
            a.addrKnown = true;
            a.addr = base.value + uint64_t(i.imm);
        }
        accesses_.push_back(a);
    }
}

bool
Cfg::existsPathAvoiding(uint64_t from, uint64_t to,
                        const std::set<uint64_t> &blocked) const
{
    // BFS over nodes not in `blocked`; `from` may be left freely but
    // is blocked on re-entry like any other node.
    std::vector<bool> seen(prog_->size(), false);
    std::deque<uint64_t> work;
    for (uint64_t s : succs_[from]) {
        if (blocked.count(s) || seen[s])
            continue;
        if (s == to)
            return true;
        seen[s] = true;
        work.push_back(s);
    }
    while (!work.empty()) {
        uint64_t cur = work.front();
        work.pop_front();
        for (uint64_t s : succs_[cur]) {
            if (blocked.count(s) || seen[s])
                continue;
            if (s == to)
                return true;
            seen[s] = true;
            work.push_back(s);
        }
    }
    return false;
}

} // namespace asf::analysis
