#include "analysis/corpus.hh"

#include "runtime/bakery.hh"
#include "runtime/dekker.hh"
#include "runtime/layout.hh"
#include "runtime/litmus.hh"
#include "runtime/marks.hh"
#include "runtime/regs.hh"
#include "runtime/the_deque.hh"
#include "runtime/tlrw.hh"
#include "sim/logging.hh"

namespace asf::analysis
{

using namespace runtime;
using namespace regs;

namespace
{

std::shared_ptr<const Program>
share(Program p)
{
    return std::make_shared<const Program>(std::move(p));
}

/** Owner: push tasks 1..n through the protocol (guest stores, so the
 *  execution checker can account for every value — host-side
 *  seedDeque() would make each task load a value-integrity
 *  "violation"), then take until empty, summing into [res]. Built
 *  unfenced; the THE fence site inside emitTake lands in
 *  omittedFences. */
Program
dequeOwner(const TheDeque &q, Addr res, unsigned ntasks, bool fenced)
{
    Assembler a("synth_owner");
    a.suppressFences(!fenced);
    a.li(env0, int64_t(q.base));
    a.li(s0, 0); // sum
    a.li(s9, int64_t(dequeEmpty));
    a.li(s2, 1);
    a.li(s3, int64_t(ntasks));
    a.bind("push");
    emitPush(a, q, env0, s2, t0, t1);
    a.addi(s2, s2, 1);
    a.bge(s3, s2, "push");
    a.bind("loop");
    emitTake(a, q, env0, a0, t0, t1, t2, t3);
    a.beq(a0, s9, "done");
    a.add(s0, s0, a0);
    a.jmp("loop");
    a.bind("done");
    a.li(t0, int64_t(res));
    a.st(t0, 0, s0);
    a.halt();
    return a.finish();
}

/** Thief: bounded steal attempts, summing stolen tasks into [res]. */
Program
dequeThief(const TheDeque &q, Addr res, unsigned attempts, bool fenced)
{
    Assembler a("synth_thief");
    a.suppressFences(!fenced);
    a.li(env0, int64_t(q.base));
    a.li(s0, 0);
    a.li(s1, int64_t(attempts));
    a.li(s9, int64_t(dequeEmpty));
    a.bind("loop");
    emitSteal(a, q, env0, a0, t0, t1, t2, t3);
    a.beq(a0, s9, "next");
    a.add(s0, s0, a0);
    a.bind("next");
    a.addi(s1, s1, -1);
    a.li(t0, 0);
    a.blt(t0, s1, "loop");
    a.li(t0, int64_t(res));
    a.st(t0, 0, s0);
    a.halt();
    return a.finish();
}

/** n write-locked increments of data[0] (cf. tests/runtime). */
Program
tlrwWriter(const TlrwTable &table, int n, bool fenced)
{
    Assembler a("synth_tlrw_writer");
    a.suppressFences(!fenced);
    a.li(s0, n);
    a.bind("loop");
    a.li(a4, int64_t(table.orecAddr(0)));
    emitTlrwWriteAcquire(a, a4, "wabort", t0, t1, t2, t3);
    a.li(a5, int64_t(table.dataAddr(0)));
    a.ld(t0, a5, 0);
    a.addi(t0, t0, 1);
    a.st(a5, 0, t0);
    emitTlrwWriteRelease(a, a4, t0);
    a.addi(s0, s0, -1);
    a.li(t0, 0);
    a.blt(t0, s0, "loop");
    a.halt();
    a.bind("wabort");
    a.compute(30);
    a.jmp("loop");
    return a.finish();
}

/** n read attempts of data[0]; aborted iterations just skip. */
Program
tlrwReader(const TlrwTable &table, int n, Addr res, bool fenced)
{
    Assembler a("synth_tlrw_reader");
    a.suppressFences(!fenced);
    a.li(s0, n);
    a.li(s1, 0);
    a.bind("loop");
    a.li(a4, int64_t(table.orecAddr(0)));
    emitTlrwReadAcquire(a, a4, "aborted", t0, t1);
    a.li(a5, int64_t(table.dataAddr(0)));
    a.ld(t0, a5, 0);
    a.add(s1, s1, t0);
    emitTlrwReadRelease(a, a4, t0, t1);
    a.bind("next");
    a.addi(s0, s0, -1);
    a.li(t0, 0);
    a.blt(t0, s0, "loop");
    a.li(t0, int64_t(res));
    a.st(t0, 0, s1);
    a.halt();
    a.bind("aborted");
    a.jmp("next");
    return a.finish();
}

/**
 * The directed minimization input: thread 0's racy load of y sits
 * behind a branch on a flag word nobody ever writes, so the load is
 * statically reachable but dynamically dead. Static analysis must
 * fence both threads' store->load pairs; no run can convict either
 * fence, so minimization must strip the placement back to empty.
 */
Program
deadpathT0(Addr x, Addr y, Addr flag)
{
    Assembler a("deadpath_t0");
    a.li(a0, int64_t(x));
    a.li(a1, int64_t(y));
    a.li(a2, int64_t(flag));
    a.li(t0, 1);
    a.st(a0, 0, t0); // st x = 1
    a.ld(t2, a2, 0); // flag: always 0, statically Unknown
    a.li(t3, 0);
    a.beq(t2, t3, "skip");
    a.ld(t4, a1, 0); // racy ld y - never executes
    a.bind("skip");
    a.halt();
    return a.finish();
}

Program
deadpathT1(Addr x, Addr y, Addr res)
{
    Assembler a("deadpath_t1");
    a.li(a0, int64_t(y));
    a.li(a1, int64_t(x));
    a.li(a2, int64_t(res));
    a.li(t0, 1);
    a.st(a0, 0, t0); // st y = 1
    a.ld(t1, a1, 0); // ld x: racy only against the dead load's cycle
    a.st(a2, 0, t1);
    a.halt();
    return a.finish();
}

constexpr unsigned litmusWarm = 600;

CorpusEntry
makeLitmus(const std::string &name)
{
    GuestLayout layout;
    LitmusLayout lay = allocLitmus(layout);
    CorpusEntry e;
    e.name = name;
    e.property = MinimizeProperty::ScEquivalence;
    if (name == "sb") {
        e.description = "store buffering (needs one fence per thread)";
        e.threads = {share(buildSbThread(lay, 0, false,
                                         FenceRole::Critical,
                                         litmusWarm)),
                     share(buildSbThread(lay, 1, false,
                                         FenceRole::Noncritical,
                                         litmusWarm))};
        e.invariant = [lay](System &sys) {
            return !(sys.debugReadWord(lay.res0) == 0 &&
                     sys.debugReadWord(lay.res1) == 0);
        };
    } else if (name == "mp") {
        e.description = "message passing (fence-free under TSO)";
        e.threads = {share(buildMpWriter(lay)),
                     share(buildMpReader(lay))};
        e.invariant = [lay](System &sys) {
            return sys.debugReadWord(lay.res0) == 1;
        };
    } else if (name == "iriw") {
        e.description = "IRIW (fence-free under TSO; multi-copy "
                        "atomicity)";
        e.threads = {share(buildIriwWriter(lay, true)),
                     share(buildIriwWriter(lay, false)),
                     share(buildIriwReader(lay, true)),
                     share(buildIriwReader(lay, false))};
        e.invariant = [lay](System &sys) {
            return !(sys.debugReadWord(lay.res0) == 1 &&
                     sys.debugReadWord(lay.res1) == 0 &&
                     sys.debugReadWord(lay.res2) == 1 &&
                     sys.debugReadWord(lay.res3) == 0);
        };
    } else if (name == "lb") {
        e.description = "load buffering (fence-free under TSO)";
        e.threads = {share(buildLbThread(lay, 0)),
                     share(buildLbThread(lay, 1))};
        e.invariant = [lay](System &sys) {
            return !(sys.debugReadWord(lay.res0) == 1 &&
                     sys.debugReadWord(lay.res1) == 1);
        };
    } else if (name == "r") {
        e.description = "R (one fence, in the judge thread)";
        // The writer warms too so the two racy windows overlap. Even
        // so, R's relaxed outcome is unobservable here: the judge's
        // y-ownership request always reaches the directory before the
        // writer's (its load bypasses at issue+1, long before the
        // writer's second store can be requested), so the forbidden
        // coherence order never forms and minimization correctly
        // drops the hand fence as dynamically unnecessary — the
        // canonical static-vs-dynamic gap, pinned by the tests.
        e.threads = {share(buildRWriter(lay, litmusWarm)),
                     share(buildRJudge(lay, false,
                                       FenceRole::Noncritical,
                                       litmusWarm))};
        e.invariant = [lay](System &sys) {
            return !(sys.debugReadWord(lay.y) == 2 &&
                     sys.debugReadWord(lay.res0) == 0);
        };
    } else if (name == "2p2w") {
        e.description = "2+2W (fence-free under TSO)";
        e.threads = {share(buildTwoPlusTwoWThread(lay, 0)),
                     share(buildTwoPlusTwoWThread(lay, 1))};
        e.invariant = [lay](System &sys) {
            return !(sys.debugReadWord(lay.x) == 1 &&
                     sys.debugReadWord(lay.y) == 1);
        };
    } else if (name == "s") {
        e.description = "S (fence-free under TSO)";
        e.threads = {share(buildSWriter(lay)),
                     share(buildSReader(lay))};
        e.invariant = [lay](System &sys) {
            return !(sys.debugReadWord(lay.res0) == 1 &&
                     sys.debugReadWord(lay.x) == 2);
        };
    } else {
        fatal("makeLitmus: unknown litmus '%s'", name.c_str());
    }
    return e;
}

} // namespace

unsigned
CorpusEntry::handFenceCount() const
{
    unsigned n = 0;
    for (const auto &p : threads)
        n += unsigned(p->omittedFences.size());
    return n;
}

MinimizeOptions
CorpusEntry::minimizeOptions() const
{
    MinimizeOptions opt;
    opt.property = property;
    opt.setup = setup;
    opt.invariant = invariant;
    opt.maxCycles = maxCycles;
    return opt;
}

std::vector<std::string>
corpusNames()
{
    return {"sb",     "mp",   "iriw", "lb",    "r",     "2p2w", "s",
            "dekker", "bakery", "tlrw", "deque", "deadpath"};
}

CorpusEntry
buildCorpusEntry(const std::string &name)
{
    if (name == "sb" || name == "mp" || name == "iriw" ||
        name == "lb" || name == "r" || name == "2p2w" || name == "s")
        return makeLitmus(name);

    CorpusEntry e;
    e.name = name;
    e.property = MinimizeProperty::ScEquivalence;

    if (name == "dekker") {
        GuestLayout layout;
        DekkerLayout lay = allocDekker(layout);
        constexpr unsigned iters = 6;
        e.description = "Dekker mutual exclusion, two threads";
        e.threads = {
            share(buildDekkerProgram(lay, 0, iters, 0, false)),
            share(buildDekkerProgram(lay, 1, iters, 0, false))};
        e.setup = [lay](System &sys) {
            sys.labelLine(lay.flag0, "dekker.flag[0]");
            sys.labelLine(lay.flag1, "dekker.flag[1]");
            sys.labelLine(lay.turn, "dekker.turn");
            sys.labelLine(lay.counterAddr, "dekker.counter");
        };
        e.invariant = [lay](System &sys) {
            return sys.debugReadWord(lay.counterAddr) == 2 * iters;
        };
        return e;
    }
    if (name == "bakery") {
        GuestLayout layout;
        BakeryLayout lay = allocBakery(layout, 2);
        constexpr unsigned iters = 5;
        e.description = "Lamport bakery lock, two threads";
        e.threads = {
            share(buildBakeryProgram(lay, 0, iters, 0, 0, false)),
            share(buildBakeryProgram(lay, 1, iters, 0, 0, false))};
        e.setup = [lay](System &sys) {
            // E[] and N[] are packed words, so each array is one
            // (false-)shared line; label the whole line once.
            sys.labelLine(lay.eAddr(0), "bakery.E[]");
            sys.labelLine(lay.nAddr(0), "bakery.N[]");
            sys.labelLine(lay.counterAddr, "bakery.counter");
        };
        e.invariant = [lay](System &sys) {
            return sys.debugReadWord(lay.counterAddr) == 2 * iters;
        };
        return e;
    }
    if (name == "tlrw") {
        GuestLayout layout;
        TlrwTable table = allocTlrwTable(layout, 2, 2);
        Addr res = layout.line();
        e.description = "TLRW STM barriers, one writer + one reader";
        e.threads = {share(tlrwWriter(table, 10, false)),
                     share(tlrwReader(table, 20, res, false))};
        e.setup = [](System &sys) {
            for (unsigned i = 0; i < 2; i++) {
                sys.core(i).setReg(regs::tid, i);
                sys.core(i).setReg(regs::nthreads, 2);
            }
        };
        e.invariant = [table](System &sys) {
            return sys.debugReadWord(table.dataAddr(0)) == 10 &&
                   sys.debugReadWord(table.writerAddr(0)) == 0;
        };
        return e;
    }
    if (name == "deque") {
        GuestLayout layout;
        TheDeque q = allocTheDeque(layout, 64);
        Addr res0 = layout.line();
        Addr res1 = layout.line();
        e.description = "THE work-stealing deque, owner + thief";
        e.threads = {share(dequeOwner(q, res0, 24, false)),
                     share(dequeThief(q, res1, 120, false))};
        e.invariant = [res0, res1](System &sys) {
            // Every task taken exactly once: 1 + ... + 24.
            return sys.debugReadWord(res0) +
                       sys.debugReadWord(res1) ==
                   300;
        };
        return e;
    }
    if (name == "deadpath") {
        GuestLayout layout;
        Addr x = layout.granule();
        Addr y = layout.granule();
        Addr flag = layout.granule();
        Addr res = layout.granule();
        e.description = "statically racy, dynamically dead: "
                        "minimization must drop every fence";
        e.threads = {share(deadpathT0(x, y, flag)),
                     share(deadpathT1(x, y, res))};
        return e;
    }
    fatal("buildCorpusEntry: unknown corpus entry '%s'", name.c_str());
}

} // namespace asf::analysis
