#include "analysis/synth.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>

#include "harness/report.hh"
#include "sim/logging.hh"

namespace asf::analysis
{

namespace
{

double
positionWeight(const Cfg &cfg, uint64_t pc, double thread_weight,
               double loop_base)
{
    return thread_weight * std::pow(loop_base, cfg.loopDepth(pc));
}

} // namespace

SynthResult
synthesize(const std::vector<std::shared_ptr<const Program>> &threads,
           const SynthOptions &opt)
{
    if (threads.empty())
        fatal("synthesize: no threads");

    std::vector<std::unique_ptr<Cfg>> cfgs;
    std::vector<const Cfg *> ptrs;
    for (const auto &p : threads) {
        cfgs.push_back(std::make_unique<Cfg>(p));
        ptrs.push_back(cfgs.back().get());
    }

    SynthResult res;
    res.input = threads;
    res.pairs = findDelayPairs(ptrs);

    std::vector<double> tw = opt.threadWeight;
    tw.resize(threads.size(), 1.0);
    res.criticalThread = 0;
    for (unsigned t = 1; t < threads.size(); t++)
        if (tw[t] > tw[res.criticalThread])
            res.criticalThread = t;

    res.insertions.resize(threads.size());
    res.fenced.resize(threads.size());

    for (unsigned t = 0; t < threads.size(); t++) {
        const Cfg &cfg = *ptrs[t];
        FenceRole role = t == res.criticalThread
                             ? FenceRole::Critical
                             : FenceRole::Noncritical;

        std::set<uint64_t> blocked(cfg.orderPoints().begin(),
                                   cfg.orderPoints().end());
        std::vector<size_t> residual;
        for (size_t i = 0; i < res.pairs.size(); i++) {
            if (res.pairs[i].thread != t)
                continue;
            if (cfg.existsPathAvoiding(res.pairs[i].storePc,
                                       res.pairs[i].loadPc, blocked))
                residual.push_back(i);
            else
                res.precovered.push_back(i);
        }

        while (!residual.empty()) {
            // Candidate positions: pcs on some store->load region of
            // a residual pair, not already an ordering point.
            std::set<uint64_t> cands;
            for (size_t i : residual) {
                const DelayPair &p = res.pairs[i];
                for (uint64_t q = 0; q < cfg.size(); q++) {
                    if (blocked.count(q))
                        continue;
                    if (cfg.reaches(p.storePc, q) &&
                        (q == p.loadPc || cfg.reaches(q, p.loadPc)))
                        cands.insert(q);
                }
            }

            // Greedy weighted cover: most pairs completed per unit of
            // estimated dynamic cost; break ties toward positions on
            // more open paths, then toward cheaper/earlier positions.
            bool have_best = false;
            uint64_t best_q = 0;
            double best_w = 0;
            size_t best_completes = 0, best_touches = 0;
            std::vector<size_t> best_covered;
            for (uint64_t q : cands) {
                double w = positionWeight(cfg, q, tw[t], opt.loopBase);
                std::set<uint64_t> with = blocked;
                with.insert(q);
                std::vector<size_t> covered;
                size_t touches = 0;
                for (size_t i : residual) {
                    const DelayPair &p = res.pairs[i];
                    if (!cfg.existsPathAvoiding(p.storePc, p.loadPc,
                                                with))
                        covered.push_back(i);
                    if (cfg.existsPathAvoiding(p.storePc, q, blocked) &&
                        (q == p.loadPc ||
                         cfg.existsPathAvoiding(q, p.loadPc, blocked)))
                        touches++;
                }
                auto better = [&]() {
                    if (!have_best)
                        return true;
                    double a = double(covered.size()) / w;
                    double b = double(best_completes) / best_w;
                    if (a != b)
                        return a > b;
                    a = double(touches) / w;
                    b = double(best_touches) / best_w;
                    if (a != b)
                        return a > b;
                    if (w != best_w)
                        return w < best_w;
                    return q < best_q;
                };
                if (better()) {
                    have_best = true;
                    best_q = q;
                    best_w = w;
                    best_completes = covered.size();
                    best_touches = touches;
                    best_covered = std::move(covered);
                }
            }
            if (!have_best)
                panic("synthesize('%s'): residual pair with no "
                      "candidate position",
                      threads[t]->name.c_str());

            blocked.insert(best_q);
            res.fences.push_back(
                {t, best_q, role, best_w, best_covered});
            res.insertions[t].push_back({best_q, role});
            std::vector<size_t> still;
            for (size_t i : residual) {
                const DelayPair &p = res.pairs[i];
                if (cfg.existsPathAvoiding(p.storePc, p.loadPc,
                                           blocked))
                    still.push_back(i);
            }
            residual = std::move(still);
        }

        std::sort(res.insertions[t].begin(), res.insertions[t].end(),
                  [](const FenceInsertion &a, const FenceInsertion &b) {
                      return a.beforePc < b.beforePc;
                  });
        res.fenced[t] =
            res.insertions[t].empty()
                ? threads[t]
                : std::make_shared<const Program>(
                      insertFences(*threads[t], res.insertions[t]));
    }
    return res;
}

std::vector<double>
profileThreadWeights(const std::string &jsonl_path, unsigned nthreads)
{
    std::vector<double> w(nthreads, 1.0);
    std::ifstream in(jsonl_path);
    if (!in)
        return w;
    std::vector<uint64_t> counts(nthreads, 0);
    bool any = false;
    std::string line;
    while (std::getline(in, line)) {
        size_t pos = line.find("\"core\":");
        if (pos == std::string::npos)
            continue;
        unsigned long core = 0;
        try {
            core = std::stoul(line.substr(pos + 7));
        } catch (...) {
            continue;
        }
        if (core < nthreads) {
            counts[core]++;
            any = true;
        }
    }
    if (!any)
        return w;
    for (unsigned t = 0; t < nthreads; t++)
        w[t] = double(counts[t]);
    return w;
}

void
writePlacementJson(const SynthResult &res, std::ostream &os)
{
    harness::JsonWriter w(os);
    w.beginObject();
    w.field("schemaVersion", 1);
    w.field("criticalThread", res.criticalThread);

    w.key("threads").beginArray();
    for (size_t t = 0; t < res.input.size(); t++) {
        w.beginObject();
        w.field("name", res.input[t]->name);
        w.field("instrs", uint64_t(res.input[t]->size()));
        w.key("insertions").beginArray();
        for (const FenceInsertion &f : res.insertions[t]) {
            w.beginObject();
            w.field("beforePc", f.beforePc);
            w.field("before", res.input[t]->at(f.beforePc).toString());
            w.field("role", f.role == FenceRole::Critical
                                ? "critical"
                                : "noncritical");
            w.endObject();
        }
        w.endArray();
        w.key("handFences").beginArray();
        for (const OmittedFence &f : res.input[t]->omittedFences) {
            w.beginObject();
            w.field("beforePc", f.beforePc);
            w.field("role", f.role == FenceRole::Critical
                                ? "critical"
                                : "noncritical");
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.key("delayPairs").beginArray();
    for (size_t i = 0; i < res.pairs.size(); i++) {
        const DelayPair &p = res.pairs[i];
        w.beginObject();
        w.field("thread", p.thread);
        w.field("storePc", p.storePc);
        w.field("loadPc", p.loadPc);
        w.field("precovered",
                std::find(res.precovered.begin(), res.precovered.end(),
                          i) != res.precovered.end());
        w.key("cycle").beginArray();
        for (const CycleStep &s : p.witness) {
            w.beginObject();
            w.field("thread", s.thread);
            w.field("pc", s.pc);
            w.field("edge", s.edgeToNext);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.key("fences").beginArray();
    for (const PlacedFence &f : res.fences) {
        w.beginObject();
        w.field("thread", f.thread);
        w.field("beforePc", f.beforePc);
        w.field("role", f.role == FenceRole::Critical ? "critical"
                                                      : "noncritical");
        w.field("weight", f.weight);
        w.key("covers").beginArray();
        for (size_t i : f.covers)
            w.value(uint64_t(i));
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace asf::analysis
