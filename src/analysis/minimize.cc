#include "analysis/minimize.hh"

#include <algorithm>

#include "harness/report.hh"
#include "sim/logging.hh"

namespace asf::analysis
{

namespace
{

/** A removable/weakenable fence: position within the working
 *  placement, identified by (thread, beforePc). */
struct Site
{
    unsigned thread;
    uint64_t beforePc;
    double weight;
};

std::vector<std::shared_ptr<const Program>>
materialize(const std::vector<std::shared_ptr<const Program>> &input,
            const std::vector<std::vector<FenceInsertion>> &placement)
{
    std::vector<std::shared_ptr<const Program>> out(input.size());
    for (size_t t = 0; t < input.size(); t++) {
        out[t] = placement[t].empty()
                     ? input[t]
                     : std::make_shared<const Program>(
                           insertFences(*input[t], placement[t]));
    }
    return out;
}

} // namespace

MinimizeResult
minimize(const SynthResult &synth, const MinimizeOptions &opt)
{
    if (opt.property == MinimizeProperty::TsoPlusInvariant &&
        !opt.invariant)
        fatal("minimize: TsoPlusInvariant needs an invariant");

    std::vector<FenceDesign> designs = opt.designs;
    if (designs.empty())
        designs.assign(allFenceDesigns, allFenceDesigns + 5);

    MinimizeResult res;
    res.insertions = synth.insertions;

    // One checked run of the current working placement; fills
    // evidence fields on conviction.
    auto convicts = [&](const std::vector<std::vector<FenceInsertion>>
                            &placement,
                        FenceDesign &ev_design, uint64_t &ev_seed,
                        std::string &ev_what) {
        auto progs = materialize(synth.input, placement);
        for (FenceDesign d : designs) {
            for (uint64_t seed : opt.seeds) {
                check::BatchRunSpec spec;
                spec.programs = progs;
                spec.design = d;
                spec.cores = opt.cores;
                spec.systemSeed = seed;
                spec.maxCycles = opt.maxCycles;
                spec.watchdogCycles = opt.watchdogCycles;
                spec.requireSc =
                    opt.property == MinimizeProperty::ScEquivalence;
                spec.setup = opt.setup;
                spec.invariant = opt.invariant;
                check::BatchVerdict v =
                    check::runCheckedExecution(spec);
                res.runs++;
                if (v.convicted()) {
                    ev_design = d;
                    ev_seed = seed;
                    ev_what = v.evidence();
                    return true;
                }
            }
        }
        return false;
    };

    // Drop pass, most expensive fence first: the savings are largest
    // and a hot fence's absence is also the easiest to convict.
    std::vector<Site> sites;
    for (const PlacedFence &f : synth.fences)
        sites.push_back({f.thread, f.beforePc, f.weight});
    std::sort(sites.begin(), sites.end(),
              [](const Site &a, const Site &b) {
                  if (a.weight != b.weight)
                      return a.weight > b.weight;
                  if (a.thread != b.thread)
                      return a.thread < b.thread;
                  return a.beforePc < b.beforePc;
              });

    for (const Site &s : sites) {
        auto &th = res.insertions[s.thread];
        auto it = std::find_if(th.begin(), th.end(),
                               [&](const FenceInsertion &f) {
                                   return f.beforePc == s.beforePc;
                               });
        if (it == th.end())
            continue; // collapsed with another site already
        auto candidate = res.insertions;
        auto &cth = candidate[s.thread];
        cth.erase(cth.begin() + (it - th.begin()));

        MinimizeDecision d;
        d.thread = s.thread;
        d.beforePc = s.beforePc;
        if (convicts(candidate, d.evidenceDesign, d.evidenceSeed,
                     d.evidence)) {
            d.action = MinimizeDecision::Action::Kept;
            res.kept++;
        } else {
            d.action = MinimizeDecision::Action::Dropped;
            res.insertions = std::move(candidate);
            res.dropped++;
        }
        res.decisions.push_back(std::move(d));
    }

    // Weakening pass: try the cheap flavor for surviving Noncritical
    // fences, one at a time, reverting on conviction.
    if (opt.tryWeaken) {
        for (MinimizeDecision &d : res.decisions) {
            if (d.action != MinimizeDecision::Action::Kept)
                continue;
            auto &th = res.insertions[d.thread];
            auto it = std::find_if(th.begin(), th.end(),
                                   [&](const FenceInsertion &f) {
                                       return f.beforePc == d.beforePc;
                                   });
            if (it == th.end() || it->role == FenceRole::Critical)
                continue;
            d.weakenTried = true;
            it->role = FenceRole::Critical;
            FenceDesign wd;
            uint64_t ws;
            if (convicts(res.insertions, wd, ws, d.weakenEvidence)) {
                it->role = FenceRole::Noncritical;
                d.weakenReverted = true;
            } else {
                d.action = MinimizeDecision::Action::Weakened;
                res.weakened++;
            }
        }
    }

    res.fenced = materialize(synth.input, res.insertions);
    {
        FenceDesign fd;
        uint64_t fs;
        std::string fe;
        res.finalPlacementPassed = !convicts(res.insertions, fd, fs, fe);
    }
    return res;
}

void
writeMinimizeJson(const MinimizeResult &res, std::ostream &os)
{
    harness::JsonWriter w(os);
    w.beginObject();
    w.field("kept", res.kept);
    w.field("dropped", res.dropped);
    w.field("weakened", res.weakened);
    w.field("runs", res.runs);
    w.field("finalPlacementPassed", res.finalPlacementPassed);
    w.key("decisions").beginArray();
    for (const MinimizeDecision &d : res.decisions) {
        w.beginObject();
        w.field("thread", d.thread);
        w.field("beforePc", d.beforePc);
        const char *act =
            d.action == MinimizeDecision::Action::Dropped ? "dropped"
            : d.action == MinimizeDecision::Action::Kept ? "kept"
                                                         : "weakened";
        w.field("action", act);
        if (d.action == MinimizeDecision::Action::Kept) {
            w.field("evidence", d.evidence);
            w.field("evidenceDesign",
                    fenceDesignName(d.evidenceDesign));
            w.field("evidenceSeed", d.evidenceSeed);
        }
        if (d.weakenTried) {
            w.field("weakenReverted", d.weakenReverted);
            if (d.weakenReverted)
                w.field("weakenEvidence", d.weakenEvidence);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace asf::analysis
