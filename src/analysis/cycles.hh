/**
 * @file
 * Shasha–Snir-style critical-cycle analysis, specialized for TSO.
 *
 * A critical cycle alternates program-order segments (inside one
 * thread) with conflict edges (between accesses of different threads
 * to the same word, at least one a write). Under sequential
 * consistency every such cycle is already impossible; under TSO the
 * only order the hardware gives up is store→load, so a cycle can
 * manifest iff it contains a W→R program-order edge between plain
 * (non-atomic) accesses — and forbidding it requires a fence on every
 * execution path of that edge. Those W→R edges are the *delay pairs*
 * this module computes:
 *
 *   (S, L) is a delay pair of thread t iff S is a plain store, L a
 *   plain load, S po+→ L to a (possibly) different word, and the
 *   conflict graph contains a return path L → ... → S whose interior
 *   runs entirely through other threads.
 *
 * The return-path search is a BFS over accesses of threads != t with
 * po+ edges inside each thread and conflict edges between threads; a
 * single access with conflict edges in and out (entry == exit) is a
 * valid one-node interior, which is how two-thread cycles like SB
 * arise. The search over-approximates Shasha–Snir minimality (an
 * interior may revisit a thread), which can only add fences, never
 * lose one: the analysis stays sound.
 *
 * Each delay pair carries one witness cycle for the placement report.
 */

#ifndef ASF_ANALYSIS_CYCLES_HH
#define ASF_ANALYSIS_CYCLES_HH

#include <string>
#include <vector>

#include "analysis/cfg.hh"

namespace asf::analysis
{

/** One node of a witness cycle, plus the edge leaving it. */
struct CycleStep
{
    unsigned thread = 0;
    uint64_t pc = 0;
    /** Edge to the next step (cyclically): "po" within a thread,
     *  "cf" (conflict) across threads. */
    std::string edgeToNext;
};

/** A store→load program-order edge that must be fenced under TSO. */
struct DelayPair
{
    unsigned thread = 0;
    uint64_t storePc = 0;
    uint64_t loadPc = 0;
    /** One critical cycle through this edge, starting at the store. */
    std::vector<CycleStep> witness;
};

/**
 * Compute the TSO delay set of a multi-threaded program: one Cfg per
 * thread (threads may share a Program object; two cores running the
 * same code still race with each other). Pairs are unique per
 * (thread, storePc, loadPc) and sorted by those keys.
 */
std::vector<DelayPair>
findDelayPairs(const std::vector<const Cfg *> &threads);

} // namespace asf::analysis

#endif // ASF_ANALYSIS_CYCLES_HH
