/**
 * @file
 * Checker-guided fence minimization. Static synthesis (synth.hh) is
 * sound but over-approximates: unresolved addresses and infeasible
 * paths generate delay pairs — and therefore fences — that no real
 * execution needs. The minimizer prunes them with dynamic evidence:
 *
 *   greedily, most-expensive fence first, drop one fence and re-run
 *   the program under every (fence design x seed) in the matrix; the
 *   fence stays out only if no run convicts — no axiom violation from
 *   the PR-4 checker, no broken functional invariant, no livelock.
 *   Otherwise it is reinstated, with the convicting run recorded as
 *   its keep-evidence.
 *
 * Two property modes define "conviction":
 *  - ScEquivalence: the run must satisfy full SC (requireSc). Sound
 *    as an oracle precisely because the *starting* placement is
 *    delay-set covered (Shasha–Snir: TSO + delay-set fences == SC);
 *    an under-fenced run that exhibits TSO reordering convicts.
 *  - TsoPlusInvariant: TSO axioms plus a caller invariant (e.g. "the
 *    counter equals the iteration total"). For programs whose spec is
 *    weaker than SC equivalence.
 *
 * An optional second pass tries *weakening* instead of dropping:
 * flipping a kept Noncritical fence to Critical (the cheap flavor
 * under WS+/SW+), reverting on conviction — e.g. WS+'s one-weak-
 * fence-per-group restriction genuinely breaks in this simulator
 * when violated, and the checker catches it.
 *
 * The result is only as strong as the run matrix: a fence the matrix
 * never exercises can be dropped wrongly. That is the contract of
 * checker-guided minimization — widen designs/seeds for confidence.
 */

#ifndef ASF_ANALYSIS_MINIMIZE_HH
#define ASF_ANALYSIS_MINIMIZE_HH

#include "analysis/synth.hh"
#include "check/batch.hh"

namespace asf::analysis
{

enum class MinimizeProperty
{
    ScEquivalence,
    TsoPlusInvariant,
};

struct MinimizeOptions
{
    MinimizeProperty property = MinimizeProperty::ScEquivalence;
    /** Empty = all five designs. */
    std::vector<FenceDesign> designs;
    std::vector<uint64_t> seeds = {1, 2};
    unsigned cores = 0;
    Tick maxCycles = 2'000'000;
    Tick watchdogCycles = 250'000;
    std::function<void(System &)> setup;
    /** Required for TsoPlusInvariant; also honored under
     *  ScEquivalence when set. */
    std::function<bool(System &)> invariant;
    /** Run the Noncritical -> Critical weakening pass. */
    bool tryWeaken = false;
};

struct MinimizeDecision
{
    unsigned thread = 0;
    uint64_t beforePc = 0;
    enum class Action
    {
        Dropped,  ///< removed: no run convicted without it
        Kept,     ///< reinstated: see the evidence fields
        Weakened, ///< role flipped to Critical, no conviction
    };
    Action action = Action::Kept;
    /** Convicting run, when action == Kept (or a weakening attempt
     *  was reverted: `weakenReverted` with its own evidence). */
    FenceDesign evidenceDesign = FenceDesign::SPlus;
    uint64_t evidenceSeed = 0;
    std::string evidence; ///< axiom / "invariant" / "watchdog" / ...
    bool weakenTried = false;
    bool weakenReverted = false;
    std::string weakenEvidence;
};

struct MinimizeResult
{
    /** Final per-thread placements (subset of the synth input). */
    std::vector<std::vector<FenceInsertion>> insertions;
    /** Input programs with the final placements spliced in. */
    std::vector<std::shared_ptr<const Program>> fenced;
    std::vector<MinimizeDecision> decisions;
    unsigned kept = 0;
    unsigned dropped = 0;
    unsigned weakened = 0;
    unsigned runs = 0; ///< total simulated executions spent

    /** The full run matrix passed with the final placement. */
    bool finalPlacementPassed = false;
};

/** Minimize a synthesized placement against dynamic evidence. */
MinimizeResult minimize(const SynthResult &synth,
                        const MinimizeOptions &opt = {});

/** Append the minimization story to a placement report stream. */
void writeMinimizeJson(const MinimizeResult &res, std::ostream &os);

} // namespace asf::analysis

#endif // ASF_ANALYSIS_MINIMIZE_HH
