/**
 * @file
 * The synthesis corpus: named multi-threaded guest programs serving
 * as inputs to the fence synthesizer, each carrying
 *
 *  - *unfenced* per-thread programs whose hand-placed fence sites
 *    were recorded via Assembler::suppressFences (ground truth in
 *    Program::omittedFences),
 *  - the execution scaffolding the checker-guided minimizer needs:
 *    a setup hook (memory seeding, per-core registers), a functional
 *    invariant, the property mode, and a cycle budget.
 *
 * Entries: the seven litmus kits (sb, mp, iriw, lb, r, 2p2w, s), the
 * four runtime kernels (dekker, bakery, tlrw, deque), and `deadpath`,
 * a directed input whose racy region is statically reachable but
 * dynamically dead — static synthesis must fence it, minimization
 * must then remove every fence again.
 */

#ifndef ASF_ANALYSIS_CORPUS_HH
#define ASF_ANALYSIS_CORPUS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/minimize.hh"

namespace asf::analysis
{

struct CorpusEntry
{
    std::string name;
    std::string description;
    /** Unfenced programs, one per thread; omittedFences carries the
     *  hand placement. */
    std::vector<std::shared_ptr<const Program>> threads;
    MinimizeProperty property = MinimizeProperty::ScEquivalence;
    std::function<void(System &)> setup;
    std::function<bool(System &)> invariant;
    Tick maxCycles = 2'000'000;

    /** Total hand-placed fences over all threads. */
    unsigned handFenceCount() const;

    /** MinimizeOptions pre-filled from this entry. */
    MinimizeOptions minimizeOptions() const;
};

/** All registry names, in presentation order. */
std::vector<std::string> corpusNames();

/** Build one entry by name; fatal() on unknown names. */
CorpusEntry buildCorpusEntry(const std::string &name);

} // namespace asf::analysis

#endif // ASF_ANALYSIS_CORPUS_HH
