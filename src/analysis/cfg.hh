/**
 * @file
 * Static control-flow and access analysis over guest programs: the
 * substrate of the fence synthesizer. For one program this computes
 *
 *  - the CFG (successor sets over the flat instruction vector),
 *  - resolved memory-access addresses via constant propagation (guest
 *    builders bake layout addresses with `li`, so most addresses are
 *    compile-time constants; anything data-dependent degrades to
 *    Unknown, which conflicts with everything),
 *  - program-order-plus reachability (nonempty CFG paths, loops
 *    included),
 *  - a loop-depth estimate per pc (backward-branch nesting) used as
 *    the static dynamic-frequency proxy for fence placement,
 *  - ordering points (existing fences and atomics, which have
 *    full-fence semantics), and
 *  - the path-avoidance query the placement stage is built on: can
 *    execution get from S to L without passing a blocked pc?
 */

#ifndef ASF_ANALYSIS_CFG_HH
#define ASF_ANALYSIS_CFG_HH

#include <memory>
#include <set>
#include <vector>

#include "prog/instr.hh"

namespace asf::analysis
{

/** A statically resolved memory access. */
struct MemAccess
{
    uint64_t pc = 0;
    bool read = false;
    bool write = false;
    bool atomic = false;
    /** Address resolution: when false the access may touch any word
     *  and conservatively conflicts with every other-thread access. */
    bool addrKnown = false;
    uint64_t addr = 0;
    unsigned loopDepth = 0;
};

/** Do two accesses possibly touch the same word? */
bool mayAlias(const MemAccess &a, const MemAccess &b);

/**
 * Per-program static summary. Built once per synthesis input thread;
 * all queries are over original (pre-rewrite) pc values.
 */
class Cfg
{
  public:
    explicit Cfg(std::shared_ptr<const Program> prog);

    const Program &program() const { return *prog_; }
    std::shared_ptr<const Program> programPtr() const { return prog_; }
    size_t size() const { return prog_->size(); }

    /** CFG successors of pc (0, 1 or 2 entries). */
    const std::vector<uint64_t> &succs(uint64_t pc) const
    {
        return succs_[pc];
    }

    /** Is `to` reachable from `from` via a nonempty CFG path? This is
     *  po+ when both endpoints are instructions that execute. */
    bool reaches(uint64_t from, uint64_t to) const
    {
        return reach_[from][to];
    }

    /** Backward-branch nesting depth of pc (0 = straight-line). */
    unsigned loopDepth(uint64_t pc) const { return loopDepth_[pc]; }

    /** Memory accesses with resolved addresses, in pc order. */
    const std::vector<MemAccess> &accesses() const { return accesses_; }

    /** Pcs of existing fences and atomics: instructions that already
     *  enforce full store→load order at their program point. */
    const std::vector<uint64_t> &orderPoints() const
    {
        return orderPoints_;
    }

    /**
     * Is there a nonempty CFG path from `from` to `to` that enters no
     * blocked pc? Blocking applies to intermediate nodes and to `to`
     * itself, but not to `from`: a fence placed before pc q intercepts
     * any path that goes on to execute q, so covering a delay pair
     * (S, L) means every S→L path enters some blocked pc.
     */
    bool existsPathAvoiding(uint64_t from, uint64_t to,
                            const std::set<uint64_t> &blocked) const;

  private:
    void buildSuccs();
    void buildReach();
    void buildLoopDepth();
    void resolveAccesses();

    std::shared_ptr<const Program> prog_;
    std::vector<std::vector<uint64_t>> succs_;
    std::vector<std::vector<bool>> reach_;
    std::vector<unsigned> loopDepth_;
    std::vector<MemAccess> accesses_;
    std::vector<uint64_t> orderPoints_;
};

} // namespace asf::analysis

#endif // ASF_ANALYSIS_CFG_HH
