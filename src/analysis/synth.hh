/**
 * @file
 * Asymmetric-fence synthesis: from an unfenced multi-threaded guest
 * program to a fenced one.
 *
 *  1. Static analysis (cfg.hh) resolves each thread's memory accesses
 *     and ordering points; cycle analysis (cycles.hh) derives the TSO
 *     delay set — the store→load program-order edges that appear in
 *     critical cycles.
 *  2. Placement covers every delay pair with fences by weighted
 *     greedy set cover over insertion positions: a fence "before pc
 *     q" covers pair (S, L) when no CFG path from S to L avoids the
 *     blocked set (existing fences, atomics, fences chosen so far).
 *     Positions are scored by pairs-completed per unit of estimated
 *     dynamic cost (threadWeight * loopBase^loopDepth), so a cheap
 *     fence outside a spin loop beats a single deeper fence that
 *     covers more pairs — matching where humans put them.
 *  3. Role assignment follows the paper's taxonomy: the thread with
 *     the highest weight (the performance-critical side — from a
 *     fence-profile if given, thread 0 on ties) gets Critical fences,
 *     which the asymmetric designs (WS+/SW+/W+) map to the cheap
 *     Weak/W+ flavor; everyone else gets Noncritical (Strong). One
 *     Critical thread by construction keeps WS+'s one-weak-fence-per-
 *     group restriction satisfiable.
 *
 * The result is sound by construction (every critical cycle gets a
 * fence on each of its reorderable edges) but static analysis
 * over-approximates feasible paths; the checker-guided minimizer
 * (minimize.hh) prunes what dynamic evidence cannot justify.
 */

#ifndef ASF_ANALYSIS_SYNTH_HH
#define ASF_ANALYSIS_SYNTH_HH

#include <memory>
#include <ostream>
#include <vector>

#include "analysis/cycles.hh"
#include "prog/rewrite.hh"

namespace asf::analysis
{

struct SynthOptions
{
    /** Relative dynamic-frequency weight per thread (empty = all 1).
     *  Fill from a fence-profile JSONL via profileThreadWeights(). */
    std::vector<double> threadWeight;
    /** Per-loop-level frequency multiplier for placement cost. */
    double loopBase = 4.0;
};

/** One synthesized fence, in original-program coordinates. */
struct PlacedFence
{
    unsigned thread = 0;
    uint64_t beforePc = 0;
    FenceRole role = FenceRole::Critical;
    /** Estimated dynamic cost (threadWeight * loopBase^depth). */
    double weight = 1.0;
    /** Indices into SynthResult::pairs this fence helped cover. */
    std::vector<size_t> covers;
};

struct SynthResult
{
    /** The full TSO delay set. */
    std::vector<DelayPair> pairs;
    /** Indices of pairs already ordered by existing fences/atomics on
     *  every path (nothing synthesized for these). */
    std::vector<size_t> precovered;
    std::vector<PlacedFence> fences;
    /** Which thread's fences are Critical (paper: the frequent side). */
    unsigned criticalThread = 0;

    std::vector<std::shared_ptr<const Program>> input;
    /** input with the synthesized fences spliced in (aliases the
     *  input program when a thread needed none). */
    std::vector<std::shared_ptr<const Program>> fenced;
    /** Per-thread insertions, sorted by position. */
    std::vector<std::vector<FenceInsertion>> insertions;
};

/** Run the full pipeline over one program per thread. */
SynthResult
synthesize(const std::vector<std::shared_ptr<const Program>> &threads,
           const SynthOptions &opt = {});

/**
 * Derive per-thread weights from a fence-profile JSONL dump (PR 3's
 * `--fence-profile`): each record's `core` counts one dynamic fence
 * execution for that thread. Returns all-1 weights when the file is
 * missing, empty, or names no core below `nthreads`.
 */
std::vector<double> profileThreadWeights(const std::string &jsonl_path,
                                         unsigned nthreads);

/** The machine-readable placement report (asf_fence_synth --json). */
void writePlacementJson(const SynthResult &res, std::ostream &os);

} // namespace asf::analysis

#endif // ASF_ANALYSIS_SYNTH_HH
