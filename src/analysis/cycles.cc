#include "analysis/cycles.hh"

#include <deque>

namespace asf::analysis
{

namespace
{

/** Flattened access node: (thread, index into that thread's accesses). */
struct Node
{
    unsigned thread;
    size_t idx;
};

bool
conflicts(const MemAccess &a, const MemAccess &b)
{
    return (a.write || b.write) && mayAlias(a, b);
}

} // namespace

std::vector<DelayPair>
findDelayPairs(const std::vector<const Cfg *> &threads)
{
    std::vector<DelayPair> out;

    for (unsigned t = 0; t < threads.size(); t++) {
        const Cfg &cfg = *threads[t];
        const auto &accs = cfg.accesses();

        // Interior universe: every access of every other thread.
        std::vector<Node> nodes;
        for (unsigned u = 0; u < threads.size(); u++) {
            if (u == t)
                continue;
            for (size_t i = 0; i < threads[u]->accesses().size(); i++)
                nodes.push_back({u, i});
        }
        auto accOf = [&](const Node &n) -> const MemAccess & {
            return threads[n.thread]->accesses()[n.idx];
        };

        for (const MemAccess &S : accs) {
            if (!S.write || S.atomic)
                continue;
            for (const MemAccess &L : accs) {
                if (!L.read || L.atomic)
                    continue;
                if (!cfg.reaches(S.pc, L.pc))
                    continue;
                // Shasha–Snir minimality: the two same-thread accesses
                // of a cycle touch different words. Unknown addresses
                // stay in conservatively.
                if (S.addrKnown && L.addrKnown && S.addr == L.addr)
                    continue;

                // Return path L -> ... -> S through other threads.
                // parent[i] = (predecessor node index, edge label);
                // -1 predecessor marks a BFS root.
                std::vector<int> parent(nodes.size(), -2);
                std::vector<const char *> parentEdge(nodes.size(),
                                                     "cf");
                std::deque<size_t> work;
                for (size_t i = 0; i < nodes.size(); i++) {
                    if (conflicts(L, accOf(nodes[i]))) {
                        parent[i] = -1;
                        work.push_back(i);
                    }
                }
                int goal = -1;
                while (!work.empty() && goal < 0) {
                    size_t cur = work.front();
                    work.pop_front();
                    if (conflicts(accOf(nodes[cur]), S)) {
                        goal = int(cur);
                        break;
                    }
                    const Node &cn = nodes[cur];
                    const Cfg &ccfg = *threads[cn.thread];
                    for (size_t nx = 0; nx < nodes.size(); nx++) {
                        if (parent[nx] != -2)
                            continue;
                        const Node &nn = nodes[nx];
                        bool edge_ok;
                        const char *label;
                        if (nn.thread == cn.thread) {
                            edge_ok = ccfg.reaches(accOf(cn).pc,
                                                   accOf(nn).pc);
                            label = "po";
                        } else {
                            edge_ok = conflicts(accOf(cn), accOf(nn));
                            label = "cf";
                        }
                        if (!edge_ok)
                            continue;
                        parent[nx] = int(cur);
                        parentEdge[nx] = label;
                        work.push_back(nx);
                    }
                }
                if (goal < 0)
                    continue;

                DelayPair dp;
                dp.thread = t;
                dp.storePc = S.pc;
                dp.loadPc = L.pc;
                // Witness: store -po-> load -cf-> interior -cf-> store.
                std::vector<CycleStep> interior;
                for (int i = goal; i >= 0; i = parent[i]) {
                    CycleStep step;
                    step.thread = nodes[i].thread;
                    step.pc = accOf(nodes[i]).pc;
                    step.edgeToNext =
                        parent[i] >= 0 ? parentEdge[i] : "cf";
                    interior.push_back(std::move(step));
                    if (parent[i] < 0)
                        break;
                }
                // `interior` is goal..root with each step labeled by
                // its *incoming* edge; reverse and shift labels to
                // "edge to next".
                dp.witness.push_back({t, S.pc, "po"});
                dp.witness.push_back({t, L.pc, "cf"});
                for (size_t i = interior.size(); i-- > 0;) {
                    std::string edge_to_next =
                        i > 0 ? interior[i - 1].edgeToNext
                              : std::string("cf");
                    dp.witness.push_back({interior[i].thread,
                                          interior[i].pc,
                                          std::move(edge_to_next)});
                }
                out.push_back(std::move(dp));
            }
        }
    }
    return out;
}

} // namespace asf::analysis
